/**
 * @file
 * Perf-trajectory smoke harness (not a paper figure).
 *
 * Times a small Chapter 4 suite twice — serially (one engine thread)
 * and in parallel — verifies the two produce bit-identical results, and
 * writes BENCH_perf.json so successive PRs can track wall-clock,
 * windows/second, and parallel speedup. Built on demand:
 *
 *   cmake --build build --target perf_smoke && ./build/perf_smoke
 *
 * The suite is described as a declarative ScenarioSpec and executed
 * through runScenario(), so this harness also times the scenario code
 * path the `memtherm` CLI uses; the JSON goes through the shared
 * writer (common/json.hh). The parallel thread count comes from
 * MEMTHERM_THREADS when set, otherwise 4 (the acceptance
 * configuration). Expected speedup is roughly min(threads, hardware
 * cores, concurrent runs); on a 1-core host serial and parallel times
 * are equal by construction.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "core/sim/scenario.hh"

using namespace memtherm;
using namespace memtherm::bench;

namespace
{

/** The ch4 mini-suite: small batches, full policy spread. */
ScenarioSpec
miniSuite()
{
    ScenarioSpec spec;
    spec.name = "ch4_mini";
    spec.copiesPerApp = 8;
    spec.workloads = {"W1", "W2", "W3", "W4"};
    spec.policies = {"No-limit", "DTM-TS", "DTM-BW", "DTM-ACG",
                     "DTM-CDVFS"};
    return spec;
}

/**
 * The policy-sweep grid for the batched pass: the full Chapter 4 policy
 * lineup (PID variants included) over the same mixes. A wide policy
 * axis is exactly where shared-prefix batching pays — every policy of a
 * workload rides one simulated lane until its decisions diverge.
 */
ScenarioSpec
policySweep()
{
    ScenarioSpec spec = miniSuite();
    spec.name = "ch4_policy_sweep";
    spec.policies = {"No-limit",  "DTM-TS",      "DTM-BW",
                     "DTM-ACG",   "DTM-CDVFS",   "DTM-BW+PID",
                     "DTM-ACG+PID", "DTM-CDVFS+PID"};
    // The Fig. 4.9-style inlet axis: at the cool points no policy ever
    // acts, so all eight runs of a workload share one simulated lane
    // end to end; at the hot point they share the warm-up prefix.
    spec.sweepTInlet = {38.0, 44.0, 50.0};
    return spec;
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Total simulated windows across a suite. */
double
totalWindows(const SuiteResults &r, Seconds window)
{
    double n = 0.0;
    for (const auto &[w, per_policy] : r)
        for (const auto &[p, res] : per_policy)
            n += res.runningTime / window;
    return n;
}

bool
identical(const SimResult &a, const SimResult &b)
{
    return a.runningTime == b.runningTime && a.totalInstr == b.totalInstr &&
           a.totalReadGB == b.totalReadGB &&
           a.totalWriteGB == b.totalWriteGB &&
           a.totalL2Misses == b.totalL2Misses &&
           a.memEnergy == b.memEnergy && a.cpuEnergy == b.cpuEnergy &&
           a.maxAmb == b.maxAmb && a.maxDram == b.maxDram &&
           a.timeAboveAmbTdp == b.timeAboveAmbTdp &&
           a.timeAboveDramTdp == b.timeAboveDramTdp &&
           a.ambTrace.values() == b.ambTrace.values() &&
           a.dramTrace.values() == b.dramTrace.values() &&
           a.inletTrace.values() == b.inletTrace.values() &&
           a.cpuPowerTrace.values() == b.cpuPowerTrace.values() &&
           a.bwTrace.values() == b.bwTrace.values();
}

bool
identical(const SuiteResults &a, const SuiteResults &b)
{
    if (a.size() != b.size())
        return false;
    for (const auto &[w, per_policy] : a) {
        auto it = b.find(w);
        if (it == b.end() || it->second.size() != per_policy.size())
            return false;
        for (const auto &[p, res] : per_policy) {
            auto jt = it->second.find(p);
            if (jt == it->second.end() || !identical(res, jt->second))
                return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    ScenarioSpec spec = miniSuite();
    const std::size_t n_runs = spec.lower().totalRuns();

    int par_threads = 4;
    if (const char *env = std::getenv("MEMTHERM_THREADS")) {
        int n = std::atoi(env);
        if (n >= 1)
            par_threads = n;
    }
    unsigned hw = std::thread::hardware_concurrency();

    std::printf("perf_smoke: %zu runs (%zu workloads x %zu policies), "
                "%d parallel threads, %u hardware threads\n",
                n_runs, spec.workloads.size(), spec.policies.size(),
                par_threads, hw);

    // Warm-up run: touches every code path once so neither timed pass
    // pays first-touch costs the other doesn't.
    {
        ScenarioSpec warm = spec;
        warm.workloads = {spec.workloads[0]};
        warm.policies = {spec.policies[0]};
        ExperimentEngine warm_engine(1);
        runScenario(warm, warm_engine);
    }

    auto t0 = std::chrono::steady_clock::now();
    ExperimentEngine serial(1);
    ScenarioResults r_serial = runScenario(spec, serial);
    auto t1 = std::chrono::steady_clock::now();
    ExperimentEngine parallel(par_threads);
    ScenarioResults r_par = runScenario(spec, parallel);
    auto t2 = std::chrono::steady_clock::now();

    double serial_s = seconds(t0, t1);
    double parallel_s = seconds(t1, t2);
    Seconds window = makeCh4Config(coolingAohs15(), false).window;
    double windows = totalWindows(r_serial.points[0].suite, window);
    bool bit_identical =
        identical(r_serial.points[0].suite, r_par.points[0].suite);
    double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;

    std::printf("serial   %.3f s (%.0f windows/s)\n", serial_s,
                windows / serial_s);
    std::printf("parallel %.3f s (%.0f windows/s), speedup %.2fx\n",
                parallel_s, windows / parallel_s, speedup);
    std::printf("results bit-identical: %s\n",
                bit_identical ? "yes" : "NO");

    // Cores the parallel pass can actually use: the engine spawns
    // par_threads workers but the host pins throughput at its core
    // count. Normalizing by this makes the number comparable across
    // machines — on a 1-core container the raw "speedup" reads as a
    // meaningless ~1x while per-core throughput stays honest.
    unsigned cores_used = hw > 0
                              ? std::min(static_cast<unsigned>(par_threads),
                                         hw)
                              : static_cast<unsigned>(par_threads);
    if (cores_used < 1)
        cores_used = 1;
    double per_core = windows / parallel_s / cores_used;
    std::printf("per-core %.0f windows/s over %u core(s)\n", per_core,
                cores_used);

    // Batched pass: the policy-sweep grid, scalar vs. `--batch`-style
    // lockstep execution, both on one engine thread so the ratio is a
    // pure per-core measure of what prefix sharing + the SoA solve buy.
    ScenarioSpec sweep = policySweep();
    ExperimentEngine batch_engine(1);
    auto t3 = std::chrono::steady_clock::now();
    ScenarioResults r_sweep_scalar = runScenario(sweep, batch_engine);
    auto t4 = std::chrono::steady_clock::now();
    BatchStats bstats;
    ScenarioResults r_sweep_batched = runScenarioBatched(
        sweep, batch_engine, static_cast<int>(sweep.policies.size()),
        &bstats);
    auto t5 = std::chrono::steady_clock::now();

    double sweep_scalar_s = seconds(t3, t4);
    double sweep_batched_s = seconds(t4, t5);
    double sweep_windows = 0.0;
    bool batched_identical =
        r_sweep_batched.points.size() == r_sweep_scalar.points.size();
    for (std::size_t p = 0; p < r_sweep_scalar.points.size(); ++p) {
        sweep_windows +=
            totalWindows(r_sweep_scalar.points[p].suite, window);
        batched_identical =
            batched_identical &&
            identical(r_sweep_scalar.points[p].suite,
                      r_sweep_batched.points[p].suite);
    }
    double batched_speedup =
        sweep_batched_s > 0.0 ? sweep_scalar_s / sweep_batched_s : 0.0;

    std::printf("policy sweep (%zu policies): scalar %.3f s "
                "(%.0f windows/s), batched %.3f s (%.0f windows/s)\n",
                sweep.policies.size(), sweep_scalar_s,
                sweep_windows / sweep_scalar_s, sweep_batched_s,
                sweep_windows / sweep_batched_s);
    std::printf("batched speedup %.2fx, prefix hit rate %.3f, "
                "%zu fork(s), batched results bit-identical: %s\n",
                batched_speedup, bstats.hitRate(), bstats.forks,
                batched_identical ? "yes" : "NO");

    // Refresh-coupled pass: the temperature->refresh feedback adds a
    // per-window band lookup, a bandwidth derate, and a DRAM power
    // injection to every DIMM. Time a refresh-coupled slice of the
    // suite so the trajectory records what the coupling costs.
    ScenarioSpec rspec = miniSuite();
    rspec.name = "ch4_mini_refresh";
    rspec.workloads = {"W1"};
    rspec.refresh = RefreshSpec{"ddr2_2x", {}};
    ExperimentEngine refresh_engine(1);
    auto t6 = std::chrono::steady_clock::now();
    ScenarioResults r_refresh = runScenario(rspec, refresh_engine);
    auto t7 = std::chrono::steady_clock::now();

    double refresh_s = seconds(t6, t7);
    double refresh_windows =
        totalWindows(r_refresh.points[0].suite, window);
    bool refresh_coupled = true;
    for (const auto &[w, per_policy] : r_refresh.points[0].suite)
        for (const auto &[p, res] : per_policy)
            refresh_coupled =
                refresh_coupled && !res.refreshBwLossPerDimm.empty();
    std::printf("refresh-coupled (ddr2_2x) %.3f s (%.0f windows/s), "
                "per-DIMM loss recorded: %s\n",
                refresh_s, refresh_windows / refresh_s,
                refresh_coupled ? "yes" : "NO");

    Json entry = Json::object();
    entry.set("runs", static_cast<double>(n_runs));
    entry.set("copies_per_app", *spec.copiesPerApp);
    entry.set("threads", par_threads);
    entry.set("hardware_threads", static_cast<double>(hw));
    entry.set("cores_used", static_cast<double>(cores_used));
    entry.set("windows", std::round(windows));
    entry.set("serial_seconds", serial_s);
    entry.set("parallel_seconds", parallel_s);
    entry.set("windows_per_sec_serial", windows / serial_s);
    entry.set("windows_per_sec_parallel", windows / parallel_s);
    entry.set("windows_per_sec_per_core", per_core);
    entry.set("speedup", speedup);
    entry.set("bit_identical", bit_identical);
    entry.set("sweep_policies",
              static_cast<double>(sweep.policies.size()));
    entry.set("sweep_windows", std::round(sweep_windows));
    entry.set("sweep_scalar_seconds", sweep_scalar_s);
    entry.set("sweep_batched_seconds", sweep_batched_s);
    entry.set("windows_per_sec_batched", sweep_windows / sweep_batched_s);
    entry.set("batched_speedup", batched_speedup);
    entry.set("prefix_hit_rate", bstats.hitRate());
    entry.set("batched_forks", static_cast<double>(bstats.forks));
    entry.set("batched_bit_identical", batched_identical);
    entry.set("refresh_windows", std::round(refresh_windows));
    entry.set("refresh_seconds", refresh_s);
    entry.set("windows_per_sec_refresh", refresh_windows / refresh_s);
    entry.set("refresh_coupled", refresh_coupled);

    // Append to the trajectory so successive PRs accumulate a history
    // instead of overwriting a single snapshot. A pre-trajectory (flat)
    // or unreadable file restarts the array.
    Json out = Json::object();
    out.set("suite", spec.name);
    Json traj = Json::array();
    try {
        Json prev = Json::load("BENCH_perf.json");
        if (const Json *arr = prev.find("trajectory")) {
            if (arr->isArray())
                for (const Json &e : arr->asArray())
                    traj.push(e);
        }
    } catch (const FatalError &) {
        // no previous file (or an unparsable one): start fresh
    }
    traj.push(std::move(entry));
    out.set("trajectory", std::move(traj));
    try {
        out.save("BENCH_perf.json");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    std::printf("wrote BENCH_perf.json (%zu trajectory entries)\n",
                out.at("trajectory").asArray().size());

    return (bit_identical && batched_identical && refresh_coupled) ? 0
                                                                   : 1;
}
