/**
 * @file
 * Perf-trajectory smoke harness (not a paper figure).
 *
 * Times a small Chapter 4 suite twice — serially (one engine thread)
 * and in parallel — verifies the two produce bit-identical results, and
 * writes BENCH_perf.json so successive PRs can track wall-clock,
 * windows/second, and parallel speedup. Built on demand:
 *
 *   cmake --build build --target perf_smoke && ./build/perf_smoke
 *
 * The parallel thread count comes from MEMTHERM_THREADS when set,
 * otherwise 4 (the acceptance configuration). Expected speedup is
 * roughly min(threads, hardware cores, concurrent runs); on a 1-core
 * host serial and parallel times are equal by construction.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"

using namespace memtherm;
using namespace memtherm::bench;

namespace
{

/** The ch4 mini-suite: small batches, full policy spread. */
struct MiniSuite
{
    SimConfig cfg;
    std::vector<Workload> workloads;
    std::vector<std::string> policies;
};

MiniSuite
miniSuite()
{
    MiniSuite s;
    s.cfg = ch4Config(coolingAohs15(), false, 8);
    s.workloads = {workloadMix("W1"), workloadMix("W2"), workloadMix("W3"),
                   workloadMix("W4")};
    s.policies = {"No-limit", "DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"};
    return s;
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Total simulated windows across a suite. */
double
totalWindows(const SuiteResults &r, Seconds window)
{
    double n = 0.0;
    for (const auto &[w, per_policy] : r)
        for (const auto &[p, res] : per_policy)
            n += res.runningTime / window;
    return n;
}

bool
identical(const SimResult &a, const SimResult &b)
{
    return a.runningTime == b.runningTime && a.totalInstr == b.totalInstr &&
           a.totalReadGB == b.totalReadGB &&
           a.totalWriteGB == b.totalWriteGB &&
           a.totalL2Misses == b.totalL2Misses &&
           a.memEnergy == b.memEnergy && a.cpuEnergy == b.cpuEnergy &&
           a.maxAmb == b.maxAmb && a.maxDram == b.maxDram &&
           a.timeAboveAmbTdp == b.timeAboveAmbTdp &&
           a.timeAboveDramTdp == b.timeAboveDramTdp &&
           a.ambTrace.values() == b.ambTrace.values() &&
           a.dramTrace.values() == b.dramTrace.values() &&
           a.inletTrace.values() == b.inletTrace.values() &&
           a.cpuPowerTrace.values() == b.cpuPowerTrace.values() &&
           a.bwTrace.values() == b.bwTrace.values();
}

bool
identical(const SuiteResults &a, const SuiteResults &b)
{
    if (a.size() != b.size())
        return false;
    for (const auto &[w, per_policy] : a) {
        auto it = b.find(w);
        if (it == b.end() || it->second.size() != per_policy.size())
            return false;
        for (const auto &[p, res] : per_policy) {
            auto jt = it->second.find(p);
            if (jt == it->second.end() || !identical(res, jt->second))
                return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    MiniSuite s = miniSuite();
    const std::size_t n_runs = s.workloads.size() * s.policies.size();

    int par_threads = 4;
    if (const char *env = std::getenv("MEMTHERM_THREADS")) {
        int n = std::atoi(env);
        if (n >= 1)
            par_threads = n;
    }
    unsigned hw = std::thread::hardware_concurrency();

    std::printf("perf_smoke: %zu runs (%zu workloads x %zu policies), "
                "%d parallel threads, %u hardware threads\n",
                n_runs, s.workloads.size(), s.policies.size(), par_threads,
                hw);

    // Warm-up run: touches every code path once so neither timed pass
    // pays first-touch costs the other doesn't.
    {
        ExperimentEngine warm(1);
        warm.runSuite(s.cfg, {s.workloads[0]}, {s.policies[0]});
    }

    auto t0 = std::chrono::steady_clock::now();
    ExperimentEngine serial(1);
    SuiteResults r_serial = serial.runSuite(s.cfg, s.workloads, s.policies);
    auto t1 = std::chrono::steady_clock::now();
    ExperimentEngine parallel(par_threads);
    SuiteResults r_par = parallel.runSuite(s.cfg, s.workloads, s.policies);
    auto t2 = std::chrono::steady_clock::now();

    double serial_s = seconds(t0, t1);
    double parallel_s = seconds(t1, t2);
    double windows = totalWindows(r_serial, s.cfg.window);
    bool bit_identical = identical(r_serial, r_par);
    double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;

    std::printf("serial   %.3f s (%.0f windows/s)\n", serial_s,
                windows / serial_s);
    std::printf("parallel %.3f s (%.0f windows/s), speedup %.2fx\n",
                parallel_s, windows / parallel_s, speedup);
    std::printf("results bit-identical: %s\n",
                bit_identical ? "yes" : "NO");

    FILE *f = std::fopen("BENCH_perf.json", "w");
    if (!f) {
        std::perror("BENCH_perf.json");
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"suite\": \"ch4_mini\",\n"
                 "  \"runs\": %zu,\n"
                 "  \"copies_per_app\": %d,\n"
                 "  \"threads\": %d,\n"
                 "  \"hardware_threads\": %u,\n"
                 "  \"windows\": %.0f,\n"
                 "  \"serial_seconds\": %.6f,\n"
                 "  \"parallel_seconds\": %.6f,\n"
                 "  \"windows_per_sec_serial\": %.1f,\n"
                 "  \"windows_per_sec_parallel\": %.1f,\n"
                 "  \"speedup\": %.4f,\n"
                 "  \"bit_identical\": %s\n"
                 "}\n",
                 n_runs, s.cfg.copiesPerApp, par_threads, hw, windows,
                 serial_s, parallel_s, windows / serial_s,
                 windows / parallel_s, speedup,
                 bit_identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_perf.json\n");

    return bit_identical ? 0 : 1;
}
