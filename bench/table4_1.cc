/**
 * @file
 * Table 4.1: simulator parameters — processor, memory organization, DTM
 * knobs and DRAM device timing.
 */

#include <iostream>

#include "bench_util.hh"
#include "dram/timing.hh"

using namespace memtherm;

int
main()
{
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    DramTiming t;
    FbdimmChannelTiming l;

    Table a("Table 4.1 — processor / memory / DTM parameters",
            {"parameter", "value"});
    a.addRow({"cores", std::to_string(cfg.nCores)});
    a.addRow({"clock/voltage levels",
              "3.2GHz@1.55V 2.8GHz@1.35V 1.6GHz@1.15V 0.8GHz@0.95V"});
    a.addRow({"memory channels",
              "2 logical (4 physical), 4 DIMMs/channel"});
    a.addRow({"channel rate", "667 MT/s FBDIMM-DDR2"});
    a.addRow({"controller buffer", "64 entries, 12 ns overhead"});
    a.addRow({"cooling configs", "AOHS_1.5 and FDHS_1.0"});
    a.addRow({"DTM interval", Table::num(cfg.dtmInterval * 1e3, 0) + " ms"});
    a.addRow({"DTM overhead", Table::num(cfg.dtmOverhead * 1e6, 0) +
              " us"});
    a.addRow({"DTM control scale", "25%"});
    a.print(std::cout);

    Table b("Table 4.1 — DDR2-667 (5-5-5) device timing",
            {"parameter", "ns"});
    b.addRow({"tRCD", Table::num(t.tRCD, 0)});
    b.addRow({"tCL", Table::num(t.tCL, 0)});
    b.addRow({"tRP", Table::num(t.tRP, 0)});
    b.addRow({"tRAS", Table::num(t.tRAS, 0)});
    b.addRow({"tRC", Table::num(t.tRC, 0)});
    b.addRow({"tWTR", Table::num(t.tWTR, 0)});
    b.addRow({"tWL", Table::num(t.tWL, 0)});
    b.addRow({"tWPD", Table::num(t.tWPD, 0)});
    b.addRow({"tRPD", Table::num(t.tRPD, 0)});
    b.addRow({"tRRD", Table::num(t.tRRD, 0)});
    b.addRow({"burst (4 beats)", Table::num(t.tBURST, 0)});
    b.addRow({"FBDIMM frame", Table::num(l.frameNs, 0)});
    b.print(std::cout);
    return 0;
}
