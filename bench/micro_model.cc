/**
 * @file
 * google-benchmark microbenchmarks of the analytic models that dominate
 * MEMSpot's per-window cost.
 */

#include <benchmark/benchmark.h>

#include <limits>

#include "core/sim/experiment.hh"

using namespace memtherm;

namespace
{

void
BM_SolvePerfWindowUnsaturated(benchmark::State &state)
{
    std::vector<CoreTask> tasks(4);
    for (auto &t : tasks)
        t.mpki = 8.0;
    for (auto _ : state) {
        WindowPerf p = solvePerfWindow(
            tasks, 3.2, 3.2, std::numeric_limits<double>::infinity(), {});
        benchmark::DoNotOptimize(p.totalRead);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_SolvePerfWindowSaturated(benchmark::State &state)
{
    std::vector<CoreTask> tasks(4);
    for (auto &t : tasks)
        t.mpki = 60.0;
    for (auto _ : state) {
        WindowPerf p = solvePerfWindow(tasks, 3.2, 3.2, 6.4, {});
        benchmark::DoNotOptimize(p.totalRead);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_MemoryThermalAdvance(benchmark::State &state)
{
    MemoryThermalModel m(MemoryOrgConfig{4, 4}, coolingAohs15(),
                         DimmPowerModel{}, 50.0);
    for (auto _ : state) {
        MemoryThermalSample s = m.advance(10.0, 3.0, 50.0, 0.01);
        benchmark::DoNotOptimize(s.hottestAmb);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_MemSpotWindow(benchmark::State &state)
{
    // End-to-end per-window cost of the level-2 simulator.
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    cfg.copiesPerApp = 1;
    cfg.instrScale = 0.02;
    ThermalSimulator sim(cfg);
    Workload w1 = workloadMix("W1");
    for (auto _ : state) {
        auto policy = makeCh4Policy("DTM-ACG");
        SimResult r = sim.run(w1, *policy);
        benchmark::DoNotOptimize(r.runningTime);
    }
}

BENCHMARK(BM_SolvePerfWindowUnsaturated);
BENCHMARK(BM_SolvePerfWindowSaturated);
BENCHMARK(BM_MemoryThermalAdvance);
BENCHMARK(BM_MemSpotWindow)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
