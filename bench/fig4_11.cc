/**
 * @file
 * Fig. 4.11: normalized average running time vs the DTM interval
 * {1, 10, 20, 100} ms, normalized to the 10 ms default. Short intervals
 * pay the 25 us control overhead; long intervals react late.
 */

#include <iostream>

#include "bench_util.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    const std::vector<Seconds> intervals{0.001, 0.010, 0.020, 0.100};
    const std::vector<std::string> policies = ch4PolicyNames(false);

    for (const CoolingConfig &cooling : {coolingFdhs10(), coolingAohs15()}) {
        std::vector<std::string> headers{"policy"};
        for (Seconds itv : intervals)
            headers.push_back(Table::num(itv * 1e3, 0) + " ms");
        Table t("Fig 4.11 — avg running time vs DTM interval (" +
                    cooling.name() + "), normalized to 10 ms",
                headers);

        // One flat engine batch over (policy, workload, interval).
        std::vector<Workload> mixes = cpu2000Mixes();
        std::vector<ExperimentEngine::Run> runs;
        for (const auto &pname : policies) {
            for (const Workload &w : mixes) {
                for (std::size_t i = 0; i < intervals.size(); ++i) {
                    SimConfig cfg = ch4Config(cooling, false, 12);
                    cfg.dtmInterval = intervals[i];
                    cfg.window = std::min(cfg.window, intervals[i]);
                    runs.push_back(ch4Run(cfg, w, pname));
                }
            }
        }
        std::vector<SimResult> results = engine().run(runs);

        std::size_t k = 0;
        for (const auto &pname : policies) {
            std::vector<double> avg(intervals.size(), 0.0);
            for (std::size_t wi = 0; wi < mixes.size(); ++wi)
                for (std::size_t i = 0; i < intervals.size(); ++i)
                    avg[i] += results[k++].runningTime;
            std::vector<std::string> row{pname};
            for (double v : avg)
                row.push_back(Table::num(v / avg[1], 3));
            t.addRow(row);
        }
        t.print(std::cout);
    }
    return 0;
}
