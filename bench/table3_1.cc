/**
 * @file
 * Table 3.1: power-model parameters for FBDIMM with 1GB DDR2-667x8 DRAM
 * chips (110nm), plus Eq. 3.1/3.2 example evaluations.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/power/power_model.hh"

using namespace memtherm;

int
main()
{
    DramPowerParams dp;
    AmbPowerParams ap;
    Table t("Table 3.1 — FBDIMM power-model parameters",
            {"parameter", "value", "unit"});
    t.addRow({"P_DRAM_static", Table::num(dp.pStatic, 2), "W"});
    t.addRow({"alpha1 (read)", Table::num(dp.alphaRead, 2), "W/(GB/s)"});
    t.addRow({"alpha2 (write)", Table::num(dp.alphaWrite, 2), "W/(GB/s)"});
    t.addRow({"P_AMB_idle (last DIMM)", Table::num(ap.pIdleLast, 1), "W"});
    t.addRow({"P_AMB_idle (other DIMMs)", Table::num(ap.pIdleOther, 1),
              "W"});
    t.addRow({"beta (bypass)", Table::num(ap.beta, 2), "W/(GB/s)"});
    t.addRow({"gamma (local)", Table::num(ap.gamma, 2), "W/(GB/s)"});
    t.print(std::cout);

    // Eq. 3.1 / 3.2 at the hottest DIMM of a loaded channel.
    DimmPowerModel model(dp, ap);
    Table e("Power at the hottest (first) DIMM vs. channel throughput",
            {"channel GB/s", "P_AMB W", "P_DRAM W", "total W"});
    for (double ch : {0.0, 1.0, 2.0, 3.0, 4.0, 5.0}) {
        auto traffic = decomposeChannelTraffic(0.75 * ch, 0.25 * ch, 4);
        DimmPower p = model.power(traffic[0], false);
        e.addRow({Table::num(ch, 1), Table::num(p.amb, 2),
                  Table::num(p.dram, 2), Table::num(p.total(), 2)});
    }
    e.print(std::cout);
    return 0;
}
