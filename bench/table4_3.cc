/**
 * @file
 * Table 4.3: thermal emergency levels and the default per-level settings
 * of every DTM scheme for the chosen FBDIMM.
 */

#include <cmath>
#include <iostream>

#include "bench_util.hh"
#include "core/dtm/basic_policies.hh"

using namespace memtherm;

namespace
{

std::string
describe(const DtmAction &a)
{
    if (!a.memoryOn)
        return "memory off";
    std::string s;
    if (std::isfinite(a.bandwidthCap))
        s += "cap " + Table::num(a.bandwidthCap, 1) + " GB/s";
    if (a.activeCores < 4)
        s += (s.empty() ? "" : ", ") + std::to_string(a.activeCores) +
             " cores";
    if (a.dvfsLevel > 0)
        s += (s.empty() ? "" : ", ") + std::string("DVFS L") +
             std::to_string(a.dvfsLevel);
    return s.empty() ? "no limit" : s;
}

} // namespace

int
main()
{
    EmergencyLevels lv = ch4EmergencyLevels();
    LeveledPolicy bw = makeCh4BwPolicy();
    LeveledPolicy acg = makeCh4AcgPolicy();
    LeveledPolicy cdvfs = makeCh4CdvfsPolicy();

    Table t("Table 4.3 — thermal emergency levels and default settings",
            {"level", "AMB range C", "DRAM range C", "DTM-BW", "DTM-ACG",
             "DTM-CDVFS"});

    auto range = [](const std::vector<Celsius> &b, int i) {
        std::string lo = i == 0 ? "-inf" : Table::num(b[i - 1], 1);
        std::string hi = i == static_cast<int>(b.size())
                             ? "+inf"
                             : Table::num(b[i], 1);
        return "[" + lo + ", " + hi + ")";
    };

    for (int i = 0; i < lv.numLevels(); ++i) {
        Celsius amb_probe =
            i == 0 ? 50.0 : lv.ambBounds()[static_cast<std::size_t>(i - 1)];
        ThermalReading r{amb_probe, 20.0, 50.0};
        // Built with += : GCC 12's -Wrestrict false-positives on
        // operator+(const char *, std::string &&) here under -O2.
        std::string level = "L";
        level += std::to_string(i + 1);
        t.addRow({level,
                  range(lv.ambBounds(), i), range(lv.dramBounds(), i),
                  describe(bw.decide(r, 0.0)),
                  describe(acg.decide(r, 0.0)),
                  describe(cdvfs.decide(r, 0.0))});
    }
    t.print(std::cout);
    return 0;
}
