/**
 * @file
 * Fig. 4.9: normalized FBDIMM energy consumption of the DTM schemes,
 * normalized to DTM-TS. DTM-ACG saves the most (less traffic AND less
 * time); PID variants save slightly more by finishing sooner.
 */

#include "ch4_suite.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    for (const CoolingConfig &cooling : {coolingFdhs10(), coolingAohs15()}) {
        SuiteResults r = ch4Suite(cooling, false);
        printNormalized("Fig 4.9 — normalized FBDIMM energy (" +
                            cooling.name() + ")",
                        r, mixNames(), ch4PolicyNames(true), "DTM-TS",
                        metricMemEnergy);
    }
    return 0;
}
