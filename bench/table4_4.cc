/**
 * @file
 * Table 4.4: processor power consumption under each DTM scheme's run
 * states (derived from the Intel Xeon datasheet model).
 */

#include <iostream>

#include "bench_util.hh"
#include "cpu/cpu_power.hh"

using namespace memtherm;

int
main()
{
    TableCpuPowerModel m(4);

    Table a("Table 4.4 — DTM-TS / DTM-ACG power (active cores)",
            {"active cores", "power W"});
    for (int n = 0; n <= 4; ++n)
        a.addRow({std::to_string(n), Table::num(m.power(n, 0, false), 1)});
    a.print(std::cout);

    Table b("Table 4.4 — DTM-CDVFS power (DVFS setting, 4 cores)",
            {"V, GHz", "power W"});
    DvfsTable dvfs = simulatedCmpDvfs();
    b.addRow({"halted", Table::num(m.power(0, 0, true), 1)});
    for (std::size_t l = dvfs.levels(); l-- > 0;) {
        const DvfsState &s = dvfs.at(l);
        b.addRow({Table::num(s.volts, 2) + "V, " + Table::num(s.freq, 1) +
                      "GHz",
                  Table::num(m.power(4, l, false), 1)});
    }
    b.print(std::cout);

    std::cout << "DTM-BW runs all cores at full speed at every level: "
              << Table::num(m.power(4, 0, false), 0) << " W\n";
    return 0;
}
