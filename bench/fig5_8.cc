/**
 * @file
 * Fig. 5.8: normalized number of L2 cache misses under each DTM policy,
 * normalized to no-limit. DTM-BW leaves misses unchanged (throttling
 * does not change demand misses); DTM-ACG and DTM-COMB cut them by
 * reducing shared-L2 contention; DTM-CDVFS leaves them unchanged.
 */

#include "ch5_suite.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    for (const Platform &plat : {pe1950(), sr1500al()}) {
        SuiteResults r = ch5SuiteRun(plat);
        printNormalized("Fig 5.8 — normalized L2 cache misses (" +
                            plat.name + ")",
                        r, ch5MixNames(), ch5PolicyNames(), "No-limit",
                        metricL2Misses);
    }
    return 0;
}
