/**
 * @file
 * Fig. 5.11: total (processor + memory) energy per workload per DTM
 * policy on the SR1500AL, normalized to DTM-BW. DTM-ACG saves via
 * shorter runs; DTM-CDVFS and DTM-COMB save via both power and time.
 */

#include "ch5_suite.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    Platform plat = sr1500al();
    SuiteResults r = ch5SuiteRun(plat, false);
    printNormalized(
        "Fig 5.11 — CPU+DRAM energy normalized to DTM-BW (SR1500AL)", r,
        ch5MixNames(), ch5PolicyNames(), "DTM-BW", metricTotalEnergy);
    return 0;
}
