/**
 * @file
 * Table 3.2: thermal-model parameters (thermal resistances and RC time
 * constants) for every heat-spreader / air-velocity combination.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/thermal/thermal_params.hh"

using namespace memtherm;

int
main()
{
    Table t("Table 3.2 — FBDIMM thermal-model parameters",
            {"config", "PsiAMB", "PsiDRAM_AMB", "PsiDRAM", "PsiAMB_DRAM",
             "tauAMB s", "tauDRAM s"});
    for (auto s : {HeatSpreader::AOHS, HeatSpreader::FDHS}) {
        for (auto v : {AirVelocity::MPS_1_0, AirVelocity::MPS_1_5,
                       AirVelocity::MPS_3_0}) {
            CoolingConfig c = coolingConfig(s, v);
            t.addRow({c.name(), Table::num(c.psiAmb, 1),
                      Table::num(c.psiDramToAmb, 1),
                      Table::num(c.psiDram, 1),
                      Table::num(c.psiAmbToDram, 1),
                      Table::num(c.tauAmb, 0), Table::num(c.tauDram, 0)});
        }
    }
    t.print(std::cout);
    std::cout << "Columns used in the experiments: AOHS_1.5 and FDHS_1.0\n";
    return 0;
}
