/**
 * @file
 * Fig. 4.3: normalized running time of every DTM scheme (with and
 * without PID) under (a) FDHS_1.0 and (b) AOHS_1.5, isolated thermal
 * model. Normalized to the ideal no-thermal-limit system.
 */

#include "ch4_suite.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    for (const CoolingConfig &cooling : {coolingFdhs10(), coolingAohs15()}) {
        SuiteResults r = ch4Suite(cooling, true);
        printNormalized("Fig 4.3 — normalized running time (" +
                            cooling.name() + ")",
                        r, mixNames(), ch4PolicyNames(true), "No-limit",
                        metricRunningTime);
    }
    return 0;
}
