/**
 * @file
 * Fig. 5.7: normalized running time of the SPEC CPU2006 workloads
 * (W11, W12) on the PE1950 — expressed as a declarative platform
 * scenario (the PE1950 catalog entry supplies the calibrated testbed
 * configuration and the Chapter 5 policy lineup).
 */

#include "ch5_suite.hh"
#include "core/sim/scenario.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    ScenarioSpec spec;
    spec.name = "fig5_7";
    spec.platform = "PE1950";
    spec.copiesPerApp = kCh5Copies;
    spec.workloads = {"W11", "W12"};
    spec.policies = ch5PolicyNames();
    spec.policies.insert(spec.policies.begin(), "No-limit");

    ScenarioResults results = runScenario(spec, engine());
    printNormalized("Fig 5.7 — normalized running time, CPU2006 (PE1950)",
                    results.points[0].suite, {"W11", "W12"},
                    ch5PolicyNames(), "No-limit", metricRunningTime);
    return 0;
}
