/**
 * @file
 * Fig. 5.7: normalized running time of the SPEC CPU2006 workloads
 * (W11, W12) on the PE1950.
 */

#include "ch5_suite.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    Platform plat = pe1950();
    std::vector<std::string> policies = ch5PolicyNames();
    policies.insert(policies.begin(), "No-limit");
    const std::vector<Workload> mixes = cpu2006Mixes();
    std::vector<ExperimentEngine::Run> runs;
    for (const Workload &w : mixes)
        for (const auto &pname : policies)
            runs.push_back(ch5Run(plat, w, pname));
    std::vector<SimResult> results = engine().run(runs);
    SuiteResults r;
    std::size_t k = 0;
    for (const Workload &w : mixes)
        for (const auto &pname : policies)
            r[w.name][pname] = std::move(results[k++]);
    printNormalized("Fig 5.7 — normalized running time, CPU2006 (PE1950)",
                    r, {"W11", "W12"}, ch5PolicyNames(), "No-limit",
                    metricRunningTime);
    return 0;
}
