/**
 * @file
 * Fig. 5.7: normalized running time of the SPEC CPU2006 workloads
 * (W11, W12) on the PE1950.
 */

#include "ch5_suite.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    Platform plat = pe1950();
    std::vector<std::string> policies = ch5PolicyNames();
    policies.insert(policies.begin(), "No-limit");
    SuiteResults r;
    for (const Workload &w : cpu2006Mixes())
        for (const auto &pname : policies)
            r[w.name][pname] = runCh5(plat, w, pname);
    printNormalized("Fig 5.7 — normalized running time, CPU2006 (PE1950)",
                    r, {"W11", "W12"}, ch5PolicyNames(), "No-limit",
                    metricRunningTime);
    return 0;
}
