/**
 * @file
 * Table 5.1: thermal emergency levels and thermal running states on the
 * two server testbeds.
 */

#include <cmath>
#include <iostream>

#include "bench_util.hh"

using namespace memtherm;

int
main()
{
    for (const Platform &p : {pe1950(), sr1500al()}) {
        Table t("Table 5.1 — " + p.name + " (AMB TDP " +
                    Table::num(p.ambTdp, 0) + " C)",
                {"level", "AMB range C", "DTM-BW", "DTM-ACG cores",
                 "DTM-CDVFS GHz", "DTM-COMB"});
        DvfsTable dvfs = xeon5160Dvfs();
        for (std::size_t i = 0; i < 4; ++i) {
            std::string lo =
                i == 0 ? "-inf" : Table::num(p.ambBounds[i - 1], 0);
            std::string hi = Table::num(p.ambBounds[i], 0);
            std::string bw = std::isfinite(p.bwCaps[i])
                                 ? Table::num(p.bwCaps[i], 1) + " GB/s"
                                 : "no limit";
            int cores = i == 0 ? 4 : (i == 1 ? 3 : 2);
            // Built with += : GCC 12's -Wrestrict false-positives on
            // operator+(const char *, std::string &&) here under -O2.
            std::string level = "L";
            level += std::to_string(i + 1);
            t.addRow({level,
                      "[" + lo + ", " + hi + ")", bw,
                      std::to_string(cores),
                      Table::num(dvfs.at(i).freq, 3),
                      std::to_string(cores) + " @ " +
                          Table::num(dvfs.at(i).freq, 3) + " GHz"});
        }
        t.print(std::cout);
    }
    return 0;
}
