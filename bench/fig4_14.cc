/**
 * @file
 * Fig. 4.14: average normalized performance improvement of DTM-ACG and
 * DTM-CDVFS over DTM-BW vs the thermal-interaction degree (FDHS_1.0,
 * integrated model). DTM-ACG's edge is roughly flat; DTM-CDVFS's edge
 * grows with the interaction because it cools the processors that heat
 * the memory.
 */

#include <iostream>

#include "bench_util.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    const std::vector<double> degrees{1.0, 1.5, 2.0};

    std::vector<std::string> headers{"policy"};
    for (double d : degrees)
        headers.push_back("degree " + Table::num(d, 1));
    Table t("Fig 4.14 — avg improvement over DTM-BW (%) vs interaction "
            "degree (FDHS_1.0, integrated)",
            headers);

    std::vector<Workload> mixes = cpu2000Mixes();

    // Engine grid: one config per interaction degree, three policies.
    std::vector<SimConfig> cfgs;
    for (double d : degrees) {
        SimConfig cfg = ch4Config(coolingFdhs10(), true);
        cfg.ambient.psiCpuMemXi = d * 3.0; // xi calibration, see makeCh4Config
        cfgs.push_back(cfg);
    }
    GridResults grid =
        engine().runGrid(cfgs, mixes, {"DTM-BW", "DTM-ACG", "DTM-CDVFS"});

    for (const std::string pname : {"DTM-ACG", "DTM-CDVFS"}) {
        std::vector<std::string> row{pname};
        for (std::size_t di = 0; di < degrees.size(); ++di) {
            double sum = 0.0;
            for (const Workload &w : mixes) {
                const auto &per_policy = grid[di].at(w.name);
                sum += (per_policy.at("DTM-BW").runningTime /
                            per_policy.at(pname).runningTime -
                        1.0) *
                       100.0;
            }
            row.push_back(
                Table::num(sum / static_cast<double>(mixes.size()), 1));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
