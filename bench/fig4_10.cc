/**
 * @file
 * Fig. 4.10: normalized processor energy of the DTM schemes, normalized
 * to DTM-TS. DTM-BW wastes energy (the processor spins at full speed
 * behind a throttled memory); DTM-CDVFS saves the most via voltage
 * scaling; PID spends extra energy for its performance gains.
 */

#include "ch4_suite.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    for (const CoolingConfig &cooling : {coolingFdhs10(), coolingAohs15()}) {
        SuiteResults r = ch4Suite(cooling, false);
        printNormalized("Fig 4.10 — normalized processor energy (" +
                            cooling.name() + ")",
                        r, mixNames(), ch4PolicyNames(true), "DTM-TS",
                        metricCpuEnergy);
    }
    return 0;
}
