/**
 * @file
 * Table 4.2: the eight SPEC CPU2000 multiprogramming workload mixes.
 */

#include <iostream>

#include "bench_util.hh"

using namespace memtherm;

int
main()
{
    Table t("Table 4.2 — workload mixes", {"workload", "benchmarks"});
    for (const Workload &w : cpu2000Mixes()) {
        std::string apps;
        for (const auto *a : w.apps)
            apps += (apps.empty() ? "" : ", ") + a->name;
        t.addRow({w.name, apps});
    }
    t.print(std::cout);
    return 0;
}
