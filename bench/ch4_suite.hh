/**
 * @file
 * The standard Chapter 4 experiment: all eight CPU2000 mixes under the
 * full policy lineup, both cooling configurations. Figs. 4.3, 4.4, 4.9
 * and 4.10 are different metrics over this same run matrix.
 */

#ifndef MEMTHERM_BENCH_CH4_SUITE_HH
#define MEMTHERM_BENCH_CH4_SUITE_HH

#include "bench_util.hh"

namespace memtherm::bench
{

/**
 * Run the Fig. 4.3/4.4/4.9/4.10 matrix for one cooling config, fanned
 * out over the shared harness engine (MEMTHERM_THREADS).
 */
inline SuiteResults
ch4Suite(const CoolingConfig &cooling, bool with_no_limit,
         bool integrated = false)
{
    SimConfig cfg = ch4Config(cooling, integrated);
    std::vector<std::string> policies = ch4PolicyNames(true);
    if (with_no_limit)
        policies.insert(policies.begin(), "No-limit");
    return engine().runSuite(cfg, cpu2000Mixes(), policies);
}

/** Workload-name row order. */
inline std::vector<std::string>
mixNames()
{
    std::vector<std::string> out;
    for (const auto &w : cpu2000Mixes())
        out.push_back(w.name);
    return out;
}

} // namespace memtherm::bench

#endif // MEMTHERM_BENCH_CH4_SUITE_HH
