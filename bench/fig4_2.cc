/**
 * @file
 * Fig. 4.2: performance of DTM-TS with varied thermal release point.
 * (a) DRAM TRP sweep under FDHS_1.0 (the DRAM devices bind there);
 * (b) AMB TRP sweep under AOHS_1.5 (the AMB binds there).
 * Running time normalized to the no-thermal-limit system; higher TRP
 * (smaller TDP-TRP gap) recovers performance.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/dtm/basic_policies.hh"

using namespace memtherm;
using namespace memtherm::bench;

namespace
{

void
sweep(const CoolingConfig &cooling, bool sweep_dram,
      const std::vector<Celsius> &trps)
{
    SimConfig cfg = ch4Config(cooling, false);
    ThermalLimits lim;
    std::vector<Workload> mixes = cpu2000Mixes();

    std::vector<std::string> headers{"workload"};
    for (Celsius trp : trps)
        headers.push_back((sweep_dram ? "DRAM TRP " : "AMB TRP ") +
                          Table::num(trp, 1));
    Table t("Fig 4.2" + std::string(sweep_dram ? "a" : "b") +
                " — DTM-TS normalized running time vs TRP (" +
                cooling.name() + ")",
            headers);

    std::vector<double> sums(trps.size(), 0.0);
    for (const Workload &w : mixes) {
        SimResult base = runCh4(cfg, w, "No-limit");
        std::vector<std::string> row{w.name};
        for (std::size_t i = 0; i < trps.size(); ++i) {
            ThermalSimulator sim(cfg);
            TsPolicy ts(lim.ambTdp, sweep_dram ? lim.ambTrp : trps[i],
                        lim.dramTdp, sweep_dram ? trps[i] : lim.dramTrp);
            SimResult r = sim.run(w, ts);
            double norm = r.runningTime / base.runningTime;
            sums[i] += norm;
            row.push_back(Table::num(norm, 3));
        }
        t.addRow(row);
    }
    std::vector<std::string> avg{"average"};
    for (double s : sums)
        avg.push_back(Table::num(s / static_cast<double>(mixes.size()), 3));
    t.addRow(avg);
    t.print(std::cout);
}

} // namespace

int
main()
{
    // DRAM TDP 85.0, AMB TDP 110.0 (Section 4.4.1).
    sweep(coolingFdhs10(), true, {81.0, 82.0, 83.0, 84.0, 84.5});
    sweep(coolingAohs15(), false, {106.0, 107.0, 108.0, 109.0, 109.5});
    return 0;
}
