/**
 * @file
 * Fig. 4.13: average normalized running time vs the thermal-interaction
 * degree (PsiCPU_MEM * xi in {1.0, 1.5, 2.0}), integrated model under
 * FDHS_1.0. Stronger interaction -> hotter memory ambient -> larger
 * penalty for every scheme.
 */

#include <iostream>

#include "bench_util.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    const std::vector<double> degrees{1.0, 1.5, 2.0};
    const std::vector<std::string> policies = ch4PolicyNames(false);

    std::vector<std::string> headers{"policy"};
    for (double d : degrees)
        headers.push_back("degree " + Table::num(d, 1));
    Table t("Fig 4.13 — avg normalized running time vs interaction degree"
            " (FDHS_1.0, integrated)",
            headers);

    std::vector<Workload> mixes = cpu2000Mixes();
    for (const auto &pname : policies) {
        std::vector<std::string> row{pname};
        for (double d : degrees) {
            SimConfig cfg = ch4Config(coolingFdhs10(), true);
            cfg.ambient.psiCpuMemXi = d * 3.0; // xi calibration, see makeCh4Config
            double sum = 0.0;
            for (const Workload &w : mixes) {
                SimResult base = runCh4(cfg, w, "No-limit");
                SimResult r = runCh4(cfg, w, pname);
                sum += r.runningTime / base.runningTime;
            }
            row.push_back(
                Table::num(sum / static_cast<double>(mixes.size()), 3));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
