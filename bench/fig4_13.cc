/**
 * @file
 * Fig. 4.13: average normalized running time vs the thermal-interaction
 * degree (PsiCPU_MEM * xi in {1.0, 1.5, 2.0}), integrated model under
 * FDHS_1.0. Stronger interaction -> hotter memory ambient -> larger
 * penalty for every scheme.
 */

#include <iostream>

#include "bench_util.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    const std::vector<double> degrees{1.0, 1.5, 2.0};
    const std::vector<std::string> policies = ch4PolicyNames(false);

    std::vector<std::string> headers{"policy"};
    for (double d : degrees)
        headers.push_back("degree " + Table::num(d, 1));
    Table t("Fig 4.13 — avg normalized running time vs interaction degree"
            " (FDHS_1.0, integrated)",
            headers);

    std::vector<Workload> mixes = cpu2000Mixes();

    // The interaction-degree sweep is a natural engine grid: one config
    // per degree, the policy lineup plus the no-limit baseline.
    std::vector<SimConfig> cfgs;
    for (double d : degrees) {
        SimConfig cfg = ch4Config(coolingFdhs10(), true);
        cfg.ambient.psiCpuMemXi = d * 3.0; // xi calibration, see makeCh4Config
        cfgs.push_back(cfg);
    }
    std::vector<std::string> all = policies;
    all.insert(all.begin(), "No-limit");
    GridResults grid = engine().runGrid(cfgs, mixes, all);

    for (const auto &pname : policies) {
        std::vector<std::string> row{pname};
        for (std::size_t di = 0; di < degrees.size(); ++di) {
            double sum = 0.0;
            for (const Workload &w : mixes) {
                const auto &per_policy = grid[di].at(w.name);
                sum += per_policy.at(pname).runningTime /
                       per_policy.at("No-limit").runningTime;
            }
            row.push_back(
                Table::num(sum / static_cast<double>(mixes.size()), 3));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
