/**
 * @file
 * Chapter 5 calibration harness (not a paper figure): prints the testbed
 * platforms' operating points against the paper's anchors.
 */

#include <iostream>

#include "common/table.hh"
#include "testbed/platform.hh"

using namespace memtherm;

namespace
{

void
quickSuite(const Platform &p, const char *mix_name)
{
    Platform plat = p;
    plat.sim.copiesPerApp = 10;
    Table t(std::string(p.name) + " " + mix_name + " policy comparison",
            {"policy", "time s", "norm", "L2 miss B", "inlet C", "cpu W",
             "maxAmb"});
    Workload w = workloadMix(mix_name);
    double base = 0.0, base_miss = 0.0;
    for (const char *name :
         {"No-limit", "DTM-BW", "DTM-ACG", "DTM-CDVFS", "DTM-COMB"}) {
        SimConfig cfg = plat.sim;
        if (std::string(name) == "No-limit" && cfg.ambient.tInlet > 26.0)
            cfg.ambient.tInlet = 26.0;
        ThermalSimulator sim(cfg);
        auto policy = makeCh5Policy(plat, name);
        SimResult r = sim.run(w, *policy);
        if (base == 0.0) {
            base = r.runningTime;
            base_miss = r.totalL2Misses;
        }
        t.addRow({r.policy, Table::num(r.runningTime, 1),
                  Table::num(r.runningTime / base, 3),
                  Table::num(r.totalL2Misses / base_miss, 3),
                  Table::num(r.inletTrace.mean(), 1),
                  Table::num(r.avgCpuPower(), 1),
                  Table::num(r.maxAmb, 1)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    // Homogeneous temperature anchors (Figs. 5.4 / 5.5).
    for (const Platform &p : {sr1500al(), pe1950()}) {
        Table t(p.name + " homogeneous no-DTM anchor",
                {"app", "avgAmb", "maxAmb", "inlet"});
        for (const char *app : {"swim", "galgel", "apsi", "vpr"}) {
            SimConfig cfg = p.sim;
            cfg.copiesPerApp = 2;
            ThermalSimulator sim(cfg);
            auto policy = makeCh5Policy(p, "DTM-BW"); // safety-capped
            SimResult r = sim.run(homogeneous(app, 4), *policy);
            t.addRow({app, Table::num(r.ambTrace.mean(), 1),
                      Table::num(r.maxAmb, 1),
                      Table::num(r.inletTrace.mean(), 1)});
        }
        t.print(std::cout);
    }

    quickSuite(sr1500al(), "W1");
    quickSuite(sr1500al(), "W8");
    quickSuite(pe1950(), "W1");
    quickSuite(pe1950(), "W8");
    return 0;
}
