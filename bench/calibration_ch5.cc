/**
 * @file
 * Chapter 5 calibration harness (not a paper figure): prints the testbed
 * platforms' operating points against the paper's anchors.
 */

#include <iostream>

#include "common/table.hh"
#include "testbed/platform.hh"

using namespace memtherm;

namespace
{

void
quickSuite(ExperimentEngine &engine, const Platform &p,
           const char *mix_name)
{
    Platform plat = p;
    plat.sim.copiesPerApp = 10;
    Table t(std::string(p.name) + " " + mix_name + " policy comparison",
            {"policy", "time s", "norm", "L2 miss B", "inlet C", "cpu W",
             "maxAmb"});
    Workload w = workloadMix(mix_name);
    std::vector<ExperimentEngine::Run> runs;
    for (const char *name :
         {"No-limit", "DTM-BW", "DTM-ACG", "DTM-CDVFS", "DTM-COMB"}) {
        runs.push_back(ch5EngineRun(plat, w, name, plat.sim.copiesPerApp));
    }
    double base = 0.0, base_miss = 0.0;
    for (const SimResult &r : engine.run(runs)) {
        if (base == 0.0) {
            base = r.runningTime;
            base_miss = r.totalL2Misses;
        }
        t.addRow({r.policy, Table::num(r.runningTime, 1),
                  Table::num(r.runningTime / base, 3),
                  Table::num(r.totalL2Misses / base_miss, 3),
                  Table::num(r.inletTrace.mean(), 1),
                  Table::num(r.avgCpuPower(), 1),
                  Table::num(r.maxAmb, 1)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    // One pool for every batch in this harness.
    ExperimentEngine engine;

    // Homogeneous temperature anchors (Figs. 5.4 / 5.5).
    const std::vector<const char *> apps{"swim", "galgel", "apsi", "vpr"};
    for (const Platform &p : {sr1500al(), pe1950()}) {
        Table t(p.name + " homogeneous no-DTM anchor",
                {"app", "avgAmb", "maxAmb", "inlet"});
        std::vector<ExperimentEngine::Run> runs;
        for (const char *app : apps) {
            SimConfig cfg = p.sim;
            cfg.copiesPerApp = 2;
            // DTM-BW: safety-capped.
            runs.push_back({std::move(cfg), homogeneous(app, 4), "DTM-BW",
                            ch5PolicyFactory(p)});
        }
        std::vector<SimResult> results = engine.run(runs);
        for (std::size_t i = 0; i < apps.size(); ++i) {
            const SimResult &r = results[i];
            t.addRow({apps[i], Table::num(r.ambTrace.mean(), 1),
                      Table::num(r.maxAmb, 1),
                      Table::num(r.inletTrace.mean(), 1)});
        }
        t.print(std::cout);
    }

    quickSuite(engine, sr1500al(), "W1");
    quickSuite(engine, sr1500al(), "W8");
    quickSuite(engine, pe1950(), "W1");
    quickSuite(engine, pe1950(), "W8");
    return 0;
}
