/**
 * @file
 * The standard Chapter 5 experiment: W1-W8 under {No-limit, DTM-BW,
 * DTM-ACG, DTM-CDVFS, DTM-COMB} on a platform. Figs. 5.6 and 5.8-5.11
 * are different metrics over this matrix.
 */

#ifndef MEMTHERM_BENCH_CH5_SUITE_HH
#define MEMTHERM_BENCH_CH5_SUITE_HH

#include "bench_util.hh"

namespace memtherm::bench
{

/**
 * Run the Chapter 5 matrix on a platform at the harness batch depth,
 * fanned out in parallel by runCh5Suite (MEMTHERM_THREADS).
 */
inline SuiteResults
ch5SuiteRun(const Platform &plat, bool with_no_limit = true)
{
    std::vector<std::string> policies = ch5PolicyNames();
    if (with_no_limit)
        policies.insert(policies.begin(), "No-limit");
    Platform p = plat;
    p.sim.copiesPerApp = kCh5Copies;
    return runCh5Suite(p, cpu2000Mixes(), policies);
}

inline std::vector<std::string>
ch5MixNames()
{
    std::vector<std::string> out;
    for (const auto &w : cpu2000Mixes())
        out.push_back(w.name);
    return out;
}

} // namespace memtherm::bench

#endif // MEMTHERM_BENCH_CH5_SUITE_HH
