/**
 * @file
 * Fig. 4.12: normalized running time of the DTM schemes under the
 * INTEGRATED thermal model (Section 3.5), normalized to no-limit.
 * The headline change from Fig. 4.3: DTM-CDVFS now beats DTM-ACG,
 * because lowering processor voltage/frequency cools the memory inlet.
 */

#include "ch4_suite.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    for (const CoolingConfig &cooling : {coolingFdhs10(), coolingAohs15()}) {
        SimConfig cfg = ch4Config(cooling, true);
        std::vector<std::string> policies{"No-limit", "DTM-TS", "DTM-BW",
                                          "DTM-ACG", "DTM-CDVFS"};
        SuiteResults r = runSuite(cfg, cpu2000Mixes(), policies);
        printNormalized(
            "Fig 4.12 — normalized running time, integrated model (" +
                cooling.name() + ")",
            r, mixNames(), {"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"},
            "No-limit", metricRunningTime);
    }
    return 0;
}
